"""AST node definitions for MiniC.

Nodes carry a ``line`` for diagnostics.  Expression nodes gain a ``ctype``
attribute during semantic analysis; identifier references gain a ``symbol``
binding to the :class:`~repro.lang.sema.Symbol` they resolve to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.lang.types import Type


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int
    #: Filled in by semantic analysis.
    ctype: Optional[Type] = field(default=None, init=False, repr=False)


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class StringLiteral(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""
    #: Resolved by sema to a Symbol.
    symbol: object = field(default=None, init=False, repr=False)


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Assign(Expr):
    #: "=" or a compound operator like "+=".
    op: str = "="
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)
    #: Resolved by sema: a FunctionSymbol or a Builtin descriptor.
    callee: object = field(default=None, init=False, repr=False)


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Deref(Expr):
    operand: Optional[Expr] = None


@dataclass
class AddrOf(Expr):
    operand: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """Prefix or postfix ++/--."""

    op: str = "++"
    target: Optional[Expr] = None
    is_prefix: bool = True


@dataclass
class Conditional(Expr):
    """The ternary ?: operator."""

    cond: Optional[Expr] = None
    then_value: Optional[Expr] = None
    else_value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: Stmt = None  # type: ignore[assignment]
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Expr] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class SwitchCase:
    """One case arm: labels (constants; None = default) + its body."""

    line: int
    values: List[int] = field(default_factory=list)
    is_default: bool = False
    body: List["Stmt"] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    selector: Expr = None  # type: ignore[assignment]
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    declared_type: Type = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    #: Resolved by sema to the variable's Symbol.
    symbol: object = field(default=None, init=False, repr=False)


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


Initializer = Union[int, str, List[int]]


@dataclass
class GlobalDecl:
    line: int
    name: str = ""
    declared_type: Type = None  # type: ignore[assignment]
    #: A constant scalar, a string, or a flat list of constants.
    init: Optional[Initializer] = None


@dataclass
class Param:
    line: int
    name: str = ""
    declared_type: Type = None  # type: ignore[assignment]


@dataclass
class FunctionDef:
    line: int
    name: str = ""
    return_type: Type = None  # type: ignore[assignment]
    params: List[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]


@dataclass
class TranslationUnit:
    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
