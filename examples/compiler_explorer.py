"""Compiler explorer: MiniC -> assembly -> machine code, side by side.

Shows the full lowering pipeline for a snippet: the generated assembly
(at -O0 and -O1), the encoded MIPS-I machine words, and a repetition
profile of the running code — a compact tour of `repro.lang`,
`repro.asm`, `repro.isa.encoding`, and `repro.core`.

Run:  python examples/compiler_explorer.py
"""

from repro.asm import assemble
from repro.core import RepetitionTracker
from repro.isa.encoding import encode
from repro.lang import compile_to_assembly
from repro.sim import Simulator

SOURCE = """
int factor = 4;

int scale(int x) {
    return x * factor * 2;
}

int main() {
    int i;
    int total = 0;
    for (i = 0; i < 10; i += 1) {
        total += scale(i) + 3 * 7 - 21;
    }
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


def show_assembly(title: str, text: str) -> None:
    print(f"--- {title} " + "-" * (60 - len(title)))
    for line in text.splitlines():
        print(f"    {line}")
    print()


def main() -> None:
    plain = compile_to_assembly(SOURCE)
    optimized = compile_to_assembly(SOURCE, optimize=True)

    show_assembly("assembly (-O0)", plain)
    show_assembly("assembly (-O1: folding, strength reduction, peephole)", optimized)

    program = assemble(optimized)
    print("--- machine code (text segment) " + "-" * 28)
    for instr in program.text[:24]:
        word = encode(instr)
        print(f"    {instr.addr:#010x}:  {word:08x}  {instr.disassemble()}")
    if len(program.text) > 24:
        print(f"    ... {len(program.text) - 24} more instructions")
    print()

    tracker = RepetitionTracker()
    result = Simulator(program, analyzers=[tracker]).run()
    report = tracker.report()
    print("--- execution " + "-" * 46)
    print(f"    output              : {result.output.strip()}")
    print(f"    dynamic instructions: {report.dynamic_total:,}")
    print(f"    repeated            : {report.dynamic_repeated_pct:.1f}%")
    print(f"    static sites reused : {report.static_repeated}/{report.static_executed}")


if __name__ == "__main__":
    main()
