"""Scripted debugging session: breakpoints, watchpoints, backtraces.

Walks the LZW-style compress workload under the debugger: break at the
code-emission function, watch the table-entry counter, and inspect
arguments and machine state at each stop — the inspection workflow the
pause/resume simulator core enables.

Run:  python examples/debug_session.py
"""

from repro.sim.debug import Debugger
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("compress")
    program = workload.program()
    debugger = Debugger(program, input_data=workload.primary_input(1))

    emit_pc = debugger.add_breakpoint("emit_code")
    print(f"breakpoint at emit_code ({emit_pc:#010x})")
    print(f"watchpoint on next_code ({debugger.add_watchpoint('next_code'):#010x})\n")

    print("first five stops:")
    stop = debugger.run()
    for _ in range(5):
        if stop.reason == "breakpoint":
            code = debugger.read_register("$a0")
            print(f"  #{stop.instructions:>7,}  emit_code(code={code})  "
                  f"backtrace: {' > '.join(debugger.backtrace())}")
        elif stop.reason == "watchpoint":
            print(f"  #{stop.instructions:>7,}  next_code touched at {stop.address:#x} "
                  f"(now {debugger.read_word('next_code')}) in "
                  f"{debugger.current_function()}")
        else:
            break
        stop = debugger.cont()

    # Drop the breakpoints and single-step a little.
    debugger.remove_breakpoint("emit_code")
    debugger.remove_watchpoint("next_code")
    stop = debugger.step(3)
    print(f"\nafter 3 single steps: pc={debugger.simulator.pc:#010x} "
          f"in {debugger.current_function()}")

    # Run to completion.
    stop = debugger.cont()
    print(f"\nfinished: reason={stop.reason}, {stop.instructions:,} instructions")
    print(f"program output: {stop.output.strip()}")
    print(f"final table entries: {debugger.read_word('table_entries')}")


if __name__ == "__main__":
    main()
