"""Hardware design-space sweep for the reuse buffer (Section 7).

The paper evaluates one reuse-buffer configuration (8K entries, 4-way)
and observes that "there is still room for improvement".  This example
sweeps buffer geometry over a chosen workload and reports how much of the
total repetition each configuration captures — the experiment a hardware
designer would run next.  A second sweep does the same for the
trace-level reuse table (Table 10T), varying capacity, associativity,
and the maximum trace length.

Run:  python examples/reuse_buffer_sweep.py [workload]   (default: li)
"""

import sys

from repro.core import RepetitionTracker, ReuseBuffer
from repro.sim import Simulator
from repro.traces import TraceReuseAnalyzer
from repro.workloads import WORKLOAD_ORDER, get_workload

GEOMETRIES = [
    (512, 1),
    (512, 4),
    (2048, 4),
    (8192, 4),   # the paper's configuration
    (8192, 16),
    (32768, 4),
]


def run_geometry(workload, entries: int, associativity: int):
    tracker = RepetitionTracker()
    buffer = ReuseBuffer(entries, associativity)
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[tracker, buffer],
    )
    simulator.run()
    report = buffer.report()
    return (
        report.hit_pct,
        report.repeated_share_pct(tracker.dynamic_repeated),
        report.invalidations,
    )


#: (capacity, ways, max_trace_len) points for the trace-table sweep.
TRACE_GEOMETRIES = [
    (256, 4, 16),
    (1024, 4, 8),
    (1024, 4, 16),   # the Table 10T default
    (1024, 8, 16),
    (4096, 4, 16),
    (1024, 4, 64),
]


def run_trace_geometry(workload, capacity: int, ways: int, max_len: int):
    analyzer = TraceReuseAnalyzer(capacity, ways, max_len)
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[analyzer],
    )
    simulator.run()
    report = analyzer.report()
    return report.coverage_pct, report.hit_rate_pct, report.mean_hit_length


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "li"
    if name not in WORKLOAD_ORDER:
        print(f"unknown workload {name!r}; choose from: {', '.join(WORKLOAD_ORDER)}")
        raise SystemExit(2)
    workload = get_workload(name)

    print(f"reuse-buffer geometry sweep over '{name}':\n")
    print(f"{'geometry':>12}  {'% of all insns':>14}  {'% of repetition':>15}  {'invalidations':>13}")
    for entries, associativity in GEOMETRIES:
        hit, captured, invalidations = run_geometry(workload, entries, associativity)
        label = f"{entries}x{associativity}"
        marker = "  <- paper" if (entries, associativity) == (8192, 4) else ""
        print(f"{label:>12}  {hit:>13.1f}%  {captured:>14.1f}%  {invalidations:>13,}{marker}")

    print(f"\ntrace-table geometry sweep over '{name}' (Table 10T):\n")
    print(f"{'geometry':>14}  {'coverage %':>10}  {'hit rate %':>10}  {'mean length':>11}")
    for capacity, ways, max_len in TRACE_GEOMETRIES:
        coverage, hit_rate, mean_len = run_trace_geometry(workload, capacity, ways, max_len)
        label = f"{capacity}x{ways}/L{max_len}"
        marker = "  <- default" if (capacity, ways, max_len) == (1024, 4, 16) else ""
        print(f"{label:>14}  {coverage:>9.1f}%  {hit_rate:>9.1f}%  {mean_len:>11.2f}{marker}")


if __name__ == "__main__":
    main()
