"""Full per-workload analysis report.

Runs one of the eight synthetic SPEC'95-like workloads under the complete
analysis stack and prints every per-benchmark statistic the paper reports
about it: repetition totals, source-slice breakdown (Table 3), function
argument repetition (Table 4), local categories (Tables 5-7), memoization
candidates (Table 8), and reuse-buffer capture (Table 10).

Run:  python examples/workload_report.py [workload]   (default: m88ksim)
"""

import sys

from repro.core.global_analysis import CATEGORY_ORDER as GLOBAL_CATEGORIES
from repro.core.local_analysis import CATEGORY_ORDER as LOCAL_CATEGORIES
from repro.harness import SuiteConfig, run_workload
from repro.workloads import WORKLOAD_ORDER, get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    if name not in WORKLOAD_ORDER:
        print(f"unknown workload {name!r}; choose from: {', '.join(WORKLOAD_ORDER)}")
        raise SystemExit(2)

    workload = get_workload(name)
    print(f"workload : {workload.name} — {workload.description}")
    print(f"analogue : {workload.spec_analogue}")
    print("running the full analysis stack...")
    result = run_workload(workload, SuiteConfig(scale=1))

    rep = result.repetition
    print(f"\n-- totals ({result.run.analyzed_instructions:,} instructions) --")
    print(f"dynamic repetition   : {rep.dynamic_repeated_pct:.1f}%")
    print(f"static executed      : {rep.static_executed} "
          f"(repeated: {rep.static_repeated_pct:.1f}%)")
    print(f"unique instances     : {rep.unique_repeatable_instances:,} "
          f"(avg repeats {rep.average_repeats:.1f})")

    print("\n-- global source slices (Table 3) --")
    glob = result.global_analysis
    for category in GLOBAL_CATEGORIES:
        print(f"  {category:18s} overall {glob.overall_pct(category):5.1f}%  "
              f"repeated {glob.repeated_pct(category):5.1f}%  "
              f"propensity {glob.propensity_pct(category):5.1f}%")

    print("\n-- function-level analysis (Tables 4 and 8) --")
    func = result.function_analysis
    print(f"  functions observed     : {func.num_functions}")
    print(f"  dynamic calls          : {func.dynamic_calls:,}")
    print(f"  all-args repeated      : {func.all_args_repeated_pct:.1f}%")
    print(f"  no-args repeated       : {func.no_args_repeated_pct:.1f}%")
    print(f"  pure (memoizable)      : {func.pure_pct:.2f}%")
    print(f"  top-5 arg-set coverage : "
          + " ".join(f"{v:.1f}%" for v in func.top_k_coverage))

    print("\n-- local categories (Tables 5/6/7) --")
    local = result.local_analysis
    for category in LOCAL_CATEGORIES:
        print(f"  {category:18s} overall {local.overall_pct(category):5.1f}%  "
              f"repeated {local.repeated_pct(category):5.1f}%  "
              f"propensity {local.propensity_pct(category):6.1f}%")

    print("\n-- top prologue/epilogue contributors (Table 9) --")
    for contributor in local.top_prologue_contributors(5):
        print(f"  {contributor.name:24s} size={contributor.static_size:4d} "
              f"repeated={contributor.repeated:,}")
    print(f"  coverage of top 5: {local.prologue_coverage_pct(5):.1f}%")

    print("\n-- reuse buffer, 8K 4-way (Table 10) --")
    reuse = result.reuse
    print(f"  captured {reuse.hit_pct:.1f}% of all instructions, "
          f"{reuse.repeated_share_pct(rep.dynamic_repeated):.1f}% of repetition "
          f"({reuse.invalidations:,} load invalidations)")


if __name__ == "__main__":
    main()
