"""Dynamic slice exploration (the paper's Section 2 concept, materialized).

The paper's analyses classify instructions by the *dynamic slice* their
values belong to. This example extracts an actual backward slice: run a
program under the SliceRecorder, take the final printed value, and list
exactly which dynamic instructions produced it — everything else the
program executed was, for that value, overhead.

Run:  python examples/slice_explorer.py
"""

from repro.core import SliceRecorder
from repro.isa.convention import Syscall
from repro.lang import compile_source
from repro.sim import Simulator

SOURCE = """
int weights[4] = {10, 20, 30, 40};

int pick(int i) {
    return weights[i & 3];
}

int main() {
    int wanted = 0;
    int noise = 0;
    int i;
    for (i = 0; i < 6; i += 1) {
        wanted += pick(i);        /* flows into the printed value   */
        noise ^= i * 2654435761;  /* executed but ultimately unused */
    }
    print_int(wanted);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    recorder = SliceRecorder()
    result = Simulator(program, analyzers=[recorder]).run()

    print(f"program output      : {result.output.strip()}")
    print(f"instructions run    : {result.analyzed_instructions}")

    # Anchor the slice at the print_int syscall: everything that fed it.
    print_step = next(
        step for service, step in recorder.syscall_steps
        if service == Syscall.PRINT_INT
    )
    report = recorder.backward_slice(print_step)
    print(f"backward slice size : {report.dynamic_size} dynamic instructions "
          f"({report.static_size} static)")
    share = 100.0 * report.dynamic_size / result.analyzed_instructions
    print(f"slice share         : {share:.1f}% of the execution fed the result;")
    print( "                      the rest was control, addressing, and the")
    print( "                      'noise' computation — the paper's overhead classes.\n")

    print("last 15 slice instructions (index, pc, instruction):")
    for node in recorder.nodes(report)[-15:]:
        print(f"  #{node.index:<6} {node.pc:#010x}  {node.disassembly}")


if __name__ == "__main__":
    main()
