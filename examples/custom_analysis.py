"""Writing a custom analyzer: repetition by instruction type.

Section 2 of the paper notes that the total analysis "can also be carried
out for different types of instructions, e.g., loads, stores, ALU
operations (but we do not do so in this paper)".  This example does
exactly that by composing a custom Analyzer with the stock
RepetitionTracker — showing how the observer API extends to analyses the
paper left as future work.

Run:  python examples/custom_analysis.py [workload]   (default: perl)
"""

import sys

from repro.core import RepetitionTracker
from repro.isa.instructions import Kind
from repro.sim import Analyzer, Simulator, StepRecord
from repro.workloads import WORKLOAD_ORDER, get_workload

#: Coarse instruction classes for the breakdown.
CLASS_OF_KIND = {
    Kind.LOAD: "loads",
    Kind.STORE: "stores",
    Kind.BRANCH: "branches",
    Kind.JUMP: "jumps/calls",
    Kind.CALL: "jumps/calls",
    Kind.JUMP_REG: "jumps/calls",
    Kind.ALU: "ALU",
    Kind.MULDIV: "mul/div",
    Kind.MFHILO: "mul/div",
    Kind.SYSCALL: "syscalls",
    Kind.NOP: "ALU",
}


class PerTypeRepetition(Analyzer):
    """Splits the repetition totals by instruction class.

    Composes with a RepetitionTracker attached *before* it, exactly like
    the library's own Table 3/6 analyzers.
    """

    def __init__(self, tracker: RepetitionTracker) -> None:
        self.tracker = tracker
        self.totals = {}
        self.repeated = {}

    def on_step(self, record: StepRecord) -> None:
        klass = CLASS_OF_KIND[record.instr.op.kind]
        self.totals[klass] = self.totals.get(klass, 0) + 1
        if self.tracker.was_repeated(record):
            self.repeated[klass] = self.repeated.get(klass, 0) + 1

    def rows(self):
        for klass in sorted(self.totals, key=self.totals.get, reverse=True):
            total = self.totals[klass]
            repeated = self.repeated.get(klass, 0)
            yield klass, total, repeated, 100.0 * repeated / total


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "perl"
    if name not in WORKLOAD_ORDER:
        print(f"unknown workload {name!r}; choose from: {', '.join(WORKLOAD_ORDER)}")
        raise SystemExit(2)

    workload = get_workload(name)
    tracker = RepetitionTracker()
    per_type = PerTypeRepetition(tracker)
    simulator = Simulator(
        workload.program(),
        input_data=workload.primary_input(1),
        analyzers=[tracker, per_type],  # tracker first!
    )
    simulator.run()

    print(f"repetition by instruction type for '{name}':\n")
    print(f"{'class':>12}  {'executed':>10}  {'repeated':>10}  {'propensity':>10}")
    for klass, total, repeated, propensity in per_type.rows():
        print(f"{klass:>12}  {total:>10,}  {repeated:>10,}  {propensity:>9.1f}%")


if __name__ == "__main__":
    main()
