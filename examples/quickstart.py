"""Quickstart: measure instruction repetition in a small program.

Compile a MiniC program, run it on the functional simulator with a
RepetitionTracker attached, and print the paper's headline statistics
(Table 1 / Table 2 style) for it.

Run:  python examples/quickstart.py
"""

from repro.core import RepetitionTracker
from repro.lang import compile_source
from repro.sim import Simulator

SOURCE = """
int weights[8] = {3, 1, 4, 1, 5, 9, 2, 6};

int score(int value) {
    return weights[value & 7] * value;
}

int main() {
    int i;
    int total = 0;
    for (i = 0; i < 200; i += 1) {
        total += score(i % 25);
    }
    print_int(total);
    putchar('\\n');
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    tracker = RepetitionTracker()  # paper setup: 2000 instances/static insn
    simulator = Simulator(program, analyzers=[tracker])
    result = simulator.run()

    print(f"program output : {result.output.strip()}")
    print(f"stop reason    : {result.stop_reason}")
    print()

    report = tracker.report()
    print(f"dynamic instructions : {report.dynamic_total:,}")
    print(f"repeated             : {report.dynamic_repeated:,} "
          f"({report.dynamic_repeated_pct:.1f}%)")
    print(f"static executed      : {report.static_executed}")
    print(f"static repeated      : {report.static_repeated} "
          f"({report.static_repeated_pct:.1f}%)")
    print(f"unique repeatable    : {report.unique_repeatable_instances:,} instances, "
          f"each repeating {report.average_repeats:.1f}x on average")
    print()
    print("repetition by unique-instance bucket (Figure 3 view):")
    for label, share in report.bucket_shares().items():
        print(f"  {label:>9}: {100 * share:5.1f}%")


if __name__ == "__main__":
    main()
